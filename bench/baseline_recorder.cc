/// Benchmark-baseline recorder (`make bench-record`): runs one fixed-seed
/// scenario for every figure/ablation bench target plus wall-clock micro
/// measurements of the hot paths (PrefetchCache ops, R-tree QueryPages,
/// grid-hash graph build) and appends a labelled snapshot to
/// BENCH_baseline.json. Successive PRs diff their snapshots against the
/// committed ones, so perf changes to the query/cache core are visible
/// in review. `--tiny` shrinks every scenario to CI-smoke size (seconds).

#include <bit>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/testing_support.h"
#include "bench/wallclock_support.h"
#include "common/stopwatch.h"
#include "graph/graph_builder.h"
#include "index/box_rtree.h"
#include "prefetch/scout_opt_prefetcher.h"
#include "storage/cache.h"
#include "storage/fault_model.h"

using namespace scout;
using namespace scout::bench;

namespace {

struct RecorderOptions {
  bool tiny = false;
  bool append = false;
  bool force = false;
  std::string label = "current";
  std::string out = "BENCH_baseline.json";
  /// Multi-client serving semantics: "full" (cache QoS + shared disk,
  /// the engine default), "cache-qos" (QoS cache, private disks), or
  /// "legacy" (pre-QoS: global LRU, fixed capacity, private disks).
  std::string serving = "full";
};

/// Maps a --serving mode name onto the engine's serving config.
/// Unknown names return false (the recorder refuses to run: a silently
/// defaulted mode would record the wrong semantics under the label).
bool ServingConfigFor(const std::string& mode, SharedServingConfig* out) {
  if (mode == "full") {
    *out = SharedServingConfig{};
    return true;
  }
  if (mode == "cache-qos") {
    *out = SharedServingConfig{};
    out->shared_disk = false;
    return true;
  }
  if (mode == "legacy") {
    *out = SharedServingConfig::Legacy();
    return true;
  }
  return false;
}

/// Scenario sizes. Full mode targets a ~1-2 minute recording; tiny mode
/// targets seconds (bench-smoke CI). Sizes are part of the recording
/// contract: changing them invalidates comparisons across snapshots.
struct RecorderScale {
  uint64_t neuron_objects;
  uint32_t sequences;
  size_t rtree_objects;
  size_t rtree_queries;
  size_t cache_pages;
  size_t cache_ops;
  size_t graph_objects;
  size_t graph_reps;
};

constexpr RecorderScale kFullScale = {120000, 6, 200000, 1000,
                                      4096,   1 << 20, 2048, 50};
constexpr RecorderScale kTinyScale = {24000, 2, 20000, 100,
                                      512,   1 << 16, 512, 5};

class Recorder {
 public:
  Recorder(const RecorderScale& scale, bool tiny) : scale_(scale), tiny_(tiny) {}

  /// Runs one guided-experiment scenario and records it as a fig row.
  void RecordFig(const std::string& bench, const std::string& scenario,
                 const Dataset& dataset, const SpatialIndex& index,
                 Prefetcher* prefetcher, const QuerySequenceConfig& qcfg,
                 const ExecutorConfig& ecfg) {
    Stopwatch sw;
    const ExperimentResult r = RunGuidedExperiment(
        dataset, index, prefetcher, qcfg, ecfg, scale_.sequences, kSeed);
    BaselineFigRow row;
    row.bench = bench;
    row.scenario = scenario;
    row.prefetcher = std::string(r.prefetcher_name);
    row.wall_ms = sw.ElapsedSeconds() * 1e3;
    row.sim_response_us = r.total_response_us;
    row.sim_residual_io_us = r.total_residual_us;
    row.hit_rate_pct = r.hit_rate_pct;
    row.speedup = r.speedup;
    figs.push_back(row);
    std::printf("%-24s %-18s %-10s %9.1f ms  hit %5.1f%%  speedup %.2f\n",
                bench.c_str(), scenario.c_str(), row.prefetcher.c_str(),
                row.wall_ms, row.hit_rate_pct, row.speedup);
  }

  void RecordMicro(const std::string& name, uint64_t ops, double wall_us) {
    BaselineMicroRow row;
    row.name = name;
    row.ops = ops;
    row.ns_per_op = ops > 0 ? wall_us * 1e3 / static_cast<double>(ops) : 0.0;
    micro.push_back(row);
    std::printf("%-32s %12llu ops %10.2f ns/op\n", name.c_str(),
                static_cast<unsigned long long>(ops), row.ns_per_op);
  }

  const RecorderScale& scale() const { return scale_; }
  bool tiny() const { return tiny_; }

  std::vector<BaselineFigRow> figs;
  std::vector<BaselineMicroRow> micro;

 private:
  RecorderScale scale_;
  bool tiny_;
};

/// Figure/ablation scenarios: one representative fixed-seed workload per
/// bench target (the full sweeps live in the bench binaries themselves;
/// the recorder pins one point of each so regressions are attributable).
void RecordFigScenarios(Recorder* rec, NeuronStack& stack) {
  PrefetcherSet set(stack.dataset.bounds);
  const PageStore& store = stack.rtree->store();

  const MicrobenchSpec& adhoc_stat = SpecOf("adhoc-stat");
  const MicrobenchSpec& adhoc_pattern = SpecOf("adhoc-pattern");
  const MicrobenchSpec& model_building = SpecOf("model-building");
  const MicrobenchSpec& vis_high = SpecOf("vis-high-quality");
  const MicrobenchSpec& vis_low = SpecOf("vis-low-quality");
  const MicrobenchSpec& vis_gaps = SpecOf("vis-gaps-high");

  rec->RecordFig("fig03_state_of_the_art", adhoc_pattern.name.data(),
                 stack.dataset, *stack.rtree, &set.scout(),
                 QueryConfigFor(adhoc_pattern),
                 ExecutorConfigFor(adhoc_pattern, store));
  rec->RecordFig("fig11_microbenchmarks", model_building.name.data(),
                 stack.dataset, *stack.rtree, &set.scout(),
                 QueryConfigFor(model_building),
                 ExecutorConfigFor(model_building, store));
  rec->RecordFig("fig11_microbenchmarks", adhoc_stat.name.data(),
                 stack.dataset, *stack.rtree, &set.ewma(),
                 QueryConfigFor(adhoc_stat),
                 ExecutorConfigFor(adhoc_stat, store));
  rec->RecordFig("fig12_gaps", vis_gaps.name.data(), stack.dataset,
                 *stack.rtree, &set.scout(), QueryConfigFor(vis_gaps),
                 ExecutorConfigFor(vis_gaps, store));

  {
    // fig13 sweeps the window ratio; pin ratio 1.0 on model-building.
    ExecutorConfig ecfg = ExecutorConfigFor(model_building, store);
    ecfg.prefetch_window_ratio = 1.0;
    rec->RecordFig("fig13_sensitivity", "model-building@r1.0", stack.dataset,
                   *stack.rtree, &set.scout(), QueryConfigFor(model_building),
                   ecfg);
  }
  rec->RecordFig("fig14_breakdown", vis_high.name.data(), stack.dataset,
                 *stack.rtree, &set.scout(), QueryConfigFor(vis_high),
                 ExecutorConfigFor(vis_high, store));
  rec->RecordFig("fig16_prediction_cost", vis_low.name.data(), stack.dataset,
                 *stack.rtree, &set.scout(), QueryConfigFor(vis_low),
                 ExecutorConfigFor(vis_low, store));

  // fig15 (graph build) is covered by the graph_grid_hash micro row.

  // fig17 (applicability) and the ablations run on the FLAT index, which
  // is also what SCOUT-OPT's sparse construction + gap traversal need.
  auto flat = std::move(*FlatIndex::Build(stack.dataset.objects));
  rec->RecordFig("fig17_applicability", adhoc_stat.name.data(), stack.dataset,
                 *flat, &set.scout(), QueryConfigFor(adhoc_stat),
                 ExecutorConfigFor(adhoc_stat, flat->store()));
  {
    ScoutOptPrefetcher scout_opt{ScoutConfig{}, flat.get()};
    rec->RecordFig("ablation_strategies", model_building.name.data(),
                   stack.dataset, *flat, &scout_opt,
                   QueryConfigFor(model_building),
                   ExecutorConfigFor(model_building, flat->store()));
  }
}

/// Multi-client shared-cache serving (fig_multiclient): N sessions, each
/// running one guided sequence, interleaved over ONE shared PrefetchCache
/// by the deterministic simulated-time scheduler, under the --serving
/// semantics (legacy / cache-qos / full). The hit rate pools all
/// sessions; successive PRs diff these rows to see how shared-cache
/// serving scales with concurrent users. Appended after the single-client
/// rows so their positions (and values) stay comparable across snapshots.
void RecordMultiClientScenarios(Recorder* rec, NeuronStack& stack,
                                const SharedServingConfig& serving) {
  const MicrobenchSpec& model_building = SpecOf("model-building");
  const QuerySequenceConfig qcfg = QueryConfigFor(model_building);
  ExecutorConfig ecfg =
      ExecutorConfigFor(model_building, stack.rtree->store());
  ecfg.serving = serving;
  const PrefetcherFactory factory = [] {
    return std::make_unique<ScoutPrefetcher>(ScoutConfig{});
  };

  for (const uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    Stopwatch sw;
    const SharedCacheResult r = RunSharedCacheExperiment(
        stack.dataset, *stack.rtree, factory, qcfg, ecfg, n, kSeed,
        /*num_workers=*/1);
    BaselineFigRow row;
    row.bench = "fig_multiclient";
    row.scenario =
        std::string(model_building.name) + "@N" + std::to_string(n);
    row.prefetcher = r.combined.prefetcher_name;
    row.wall_ms = sw.ElapsedSeconds() * 1e3;
    row.sim_response_us = r.combined.total_response_us;
    row.sim_residual_io_us = r.combined.total_residual_us;
    row.hit_rate_pct = r.combined.hit_rate_pct;
    row.speedup = r.combined.speedup;
    row.multiclient = true;
    row.evictions_per_session =
        static_cast<double>(r.evictions) / static_cast<double>(n);
    row.sim_disk_wait_us = r.combined.total_disk_wait_us;
    row.cross_hit_share_pct = r.cross_hit_share_pct;
    rec->figs.push_back(row);
    std::printf(
        "%-24s %-18s %-10s %9.1f ms  hit %5.1f%%  speedup %.2f  "
        "(cross %4.1f%%, evict/S %.1f, wait %lld us)\n",
        row.bench.c_str(), row.scenario.c_str(), row.prefetcher.c_str(),
        row.wall_ms, row.hit_rate_pct, row.speedup, r.cross_hit_share_pct,
        row.evictions_per_session,
        static_cast<long long>(row.sim_disk_wait_us));
  }
}

/// Degraded-mode serving under injected faults (fig_faults): the
/// model-building workload at N = 8 over FULL serving semantics
/// (regardless of --serving: outage faults need the shared disk), once
/// fault-free and twice through a moderate fault storm — retry-only vs
/// retry+shed. The fault-free row `...+f0` is the zero-fault anchor: its
/// sim metrics must stay bit-identical to the fig_multiclient
/// model-building@N8 row of the same snapshot (CI asserts this), proving
/// the fault seams cost nothing when no schedule is attached.
void RecordFaultScenarios(Recorder* rec, NeuronStack& stack) {
  const MicrobenchSpec& model_building = SpecOf("model-building");
  const QuerySequenceConfig qcfg = QueryConfigFor(model_building);
  ExecutorConfig ecfg =
      ExecutorConfigFor(model_building, stack.rtree->store());
  ecfg.serving = SharedServingConfig{};
  const PrefetcherFactory factory = [] {
    return std::make_unique<ScoutPrefetcher>(ScoutConfig{});
  };

  FaultConfig storm;
  storm.seed = 0xdecafbad;
  storm.read_failure_prob = 0.08;
  storm.read_failure_burst_us = 4000;
  storm.channel_outage_prob = 0.25;
  storm.channel_outage_period_us = 200000;
  storm.channel_outage_us = 30000;
  storm.latency_spike_prob = 0.05;
  storm.latency_spike_multiplier = 6.0;
  const FaultSchedule schedule{storm};

  struct FaultScenario {
    const char* suffix;
    const FaultSchedule* faults;
    bool shed;
  };
  const FaultScenario scenarios[] = {
      {"f0", nullptr, true},
      {"storm-retry", &schedule, false},
      {"storm-shed", &schedule, true},
  };
  for (const FaultScenario& s : scenarios) {
    ExecutorConfig run_cfg = ecfg;
    run_cfg.fault_schedule = s.faults;
    run_cfg.fault_policy.shed_prefetch_on_retry = s.shed;
    Stopwatch sw;
    const SharedCacheResult r = RunSharedCacheExperiment(
        stack.dataset, *stack.rtree, factory, qcfg, run_cfg,
        /*num_sessions=*/8, kSeed, /*num_workers=*/1);
    BaselineFigRow row;
    row.bench = "fig_faults";
    row.scenario = std::string(model_building.name) + "@N8+" + s.suffix;
    row.prefetcher = r.combined.prefetcher_name;
    row.wall_ms = sw.ElapsedSeconds() * 1e3;
    row.sim_response_us = r.combined.total_response_us;
    row.sim_residual_io_us = r.combined.total_residual_us;
    row.hit_rate_pct = r.combined.hit_rate_pct;
    row.speedup = r.combined.speedup;
    row.multiclient = true;
    row.evictions_per_session = static_cast<double>(r.evictions) / 8.0;
    row.sim_disk_wait_us = r.combined.total_disk_wait_us;
    row.cross_hit_share_pct = r.cross_hit_share_pct;
    row.faulted = true;
    row.faults_seen = r.faults_seen;
    row.retries = r.retries;
    row.shed_prefetches = r.shed_prefetches;
    row.p99_response_us = r.p99_response_us;
    rec->figs.push_back(row);
    std::printf(
        "%-24s %-22s %-10s %9.1f ms  hit %5.1f%%  p99 %lld us  "
        "(faults %llu, retries %llu, shed %llu)\n",
        row.bench.c_str(), row.scenario.c_str(), row.prefetcher.c_str(),
        row.wall_ms, row.hit_rate_pct,
        static_cast<long long>(row.p99_response_us),
        static_cast<unsigned long long>(row.faults_seen),
        static_cast<unsigned long long>(row.retries),
        static_cast<unsigned long long>(row.shed_prefetches));
  }
}

/// Real-I/O wall-clock serving (fig_wallclock): the model-building
/// sequence served from an on-disk page file, sync vs decoupled-async
/// prefetch, cold and warm. These are the only rows whose primary
/// metric is wall_ms (real elapsed time; the sim_* fields stay zero) —
/// successive PRs diff the cold speedup to keep the async pipeline's
/// win from regressing. The page file is generated next to the output
/// in the build tree and never committed. Appended after the fault rows
/// so all earlier row positions stay comparable across snapshots.
void RecordWallclockScenarios(Recorder* rec) {
  WallclockOptions opt;
  opt.neuron_objects = rec->scale().neuron_objects;
  WallclockResults results;
  if (!RunWallclockScenarios(opt, &results)) {
    std::fprintf(stderr, "baseline_recorder: wallclock scenarios failed\n");
    std::exit(1);
  }
  if (!results.HashesAgree()) {
    std::fprintf(stderr,
                 "baseline_recorder: sync/async result hashes diverge — "
                 "refusing to record a broken wallclock row\n");
    std::exit(1);
  }
  struct ModeRow {
    const char* scenario;
    const char* prefetcher;
    const WallclockModeResult* r;
    double speedup;
  };
  const ModeRow rows[] = {
      {"cold", "scout-sync", &results.sync_cold, 1.0},
      {"cold", "scout-async", &results.async_cold, results.ColdSpeedup()},
      {"warm", "scout-sync", &results.sync_warm, 1.0},
      {"warm", "scout-async", &results.async_warm, results.WarmSpeedup()},
  };
  for (const ModeRow& m : rows) {
    BaselineFigRow row;
    row.bench = "fig_wallclock";
    row.scenario = m.scenario;
    row.prefetcher = m.prefetcher;
    row.wall_ms = m.r->wall_ms;
    row.hit_rate_pct = m.r->hit_rate_pct;
    row.speedup = m.speedup;
    row.wallclock = true;
    row.device_latency_us = opt.device_latency_us;
    row.think_time_us = opt.think_time_us;
    row.demand_reads = m.r->demand_reads;
    row.prefetch_reads = m.r->prefetch_reads;
    row.late_hit_waits = m.r->late_hit_waits;
    row.result_hash = m.r->result_hash;
    rec->figs.push_back(row);
    std::printf(
        "%-24s %-18s %-10s %9.1f ms  hit %5.1f%%  speedup %.2f  "
        "(demand %llu, prefetch %llu, latewait %llu)\n",
        row.bench.c_str(), row.scenario.c_str(), row.prefetcher.c_str(),
        row.wall_ms, row.hit_rate_pct, row.speedup,
        static_cast<unsigned long long>(row.demand_reads),
        static_cast<unsigned long long>(row.prefetch_reads),
        static_cast<unsigned long long>(row.late_hit_waits));
  }
}

/// Records the row and folds the checksum into the output so the work
/// cannot be optimized away (and snapshots can be sanity-compared).
void RecordOrUse(Recorder* rec, const char* name, uint64_t ops,
                 double wall_us, uint64_t checksum) {
  rec->RecordMicro(name, ops, wall_us);
  std::printf("  (%s checksum %llu)\n", name,
              static_cast<unsigned long long>(checksum));
}

/// Hot-path micro measurements (wall clock). These are the rows the
/// optimization track diffs for its >= 1.5x acceptance bars.
void RecordMicroScenarios(Recorder* rec) {
  const RecorderScale& scale = rec->scale();

  {
    // Mixed insert/refresh/evict traffic over a working set twice the
    // cache capacity — the PrefetchCache pattern the executor generates.
    PrefetchCache cache(scale.cache_pages * kPageBytes);
    Rng rng(11);
    const uint64_t working_set = scale.cache_pages * 2;
    Stopwatch sw;
    for (size_t i = 0; i < scale.cache_ops; ++i) {
      cache.Insert(static_cast<PageId>(rng.NextBounded(working_set)));
    }
    RecordOrUse(rec, "cache_insert_evict", scale.cache_ops,
                static_cast<double>(sw.ElapsedMicros()), cache.NumPages());
  }
  {
    // Pure hit path: the cost of serving one cache hit on resident pages
    // (hit test + LRU refresh, as the executor does per query page).
    PrefetchCache cache(scale.cache_pages * kPageBytes);
    for (PageId p = 0; p < scale.cache_pages; ++p) cache.Insert(p);
    Rng rng(12);
    uint64_t hits = 0;
    Stopwatch sw;
    for (size_t i = 0; i < scale.cache_ops; ++i) {
      const PageId p = static_cast<PageId>(rng.NextBounded(scale.cache_pages));
      if (cache.TouchIfPresent(p)) ++hits;
    }
    RecordOrUse(rec, "cache_hit_touch", scale.cache_ops,
                static_cast<double>(sw.ElapsedMicros()), hits);
  }
  {
    // R-tree range queries, same shape as micro_core_ops BM_RTreeRangeQuery.
    const Aabb bounds(Vec3(0, 0, 0), Vec3(300, 300, 300));
    auto index = std::move(
        *RTreeIndex::Build(benchsupport::RandomObjects(
            scale.rtree_objects, bounds, /*seed=*/4)));
    {
      Rng rng(5);
      std::vector<PageId> pages;
      uint64_t total_pages = 0;
      Stopwatch sw;
      for (size_t i = 0; i < scale.rtree_queries; ++i) {
        const Region query = Region::CubeAt(
            Vec3(rng.Uniform(30, 270), rng.Uniform(30, 270),
                 rng.Uniform(30, 270)),
            80000.0);
        pages.clear();
        index->QueryPages(query, &pages);
        total_pages += pages.size();
      }
      RecordOrUse(rec, "rtree_query_pages", scale.rtree_queries,
                  static_cast<double>(sw.ElapsedMicros()), total_pages);
    }
    {
      // Frustum-aspect queries through the same index: the
      // IntersectsPrefiltered walk the vis scenarios lean on (workload
      // shared with micro_core_ops BM_FrustumPrefilteredQuery via
      // benchsupport).
      Rng rng(15);
      std::vector<PageId> pages;
      uint64_t total_pages = 0;
      Stopwatch sw;
      for (size_t i = 0; i < scale.rtree_queries; ++i) {
        const Region query = benchsupport::NextFrustumQuery(&rng);
        pages.clear();
        index->QueryPages(query, &pages);
        total_pages += pages.size();
      }
      RecordOrUse(rec, "frustum_prefiltered_query", scale.rtree_queries,
                  static_cast<double>(sw.ElapsedMicros()), total_pages);
    }
  }
  {
    // Pure directory walk: box queries straight against a BoxRTree (no
    // PageStore behind it), isolating the SoA child-AABB loop the two
    // rows above sit on. Tree + query distribution shared with
    // micro_core_ops BM_RTreeDirectoryWalk via benchsupport (STR-packed
    // — an unsorted load would make every node cover the whole space
    // and reduce the walk to a linear scan).
    const BoxRTree tree =
        benchsupport::DirectoryWalkTree(scale.rtree_objects);
    Rng rng(17);
    std::vector<uint32_t> out;
    uint64_t total_hits = 0;
    Stopwatch sw;
    for (size_t i = 0; i < scale.rtree_queries; ++i) {
      const Aabb query = benchsupport::NextDirectoryWalkQuery(&rng);
      out.clear();
      tree.Query(query, &out);
      total_hits += out.size();
    }
    RecordOrUse(rec, "rtree_directory_walk", scale.rtree_queries,
                static_cast<double>(sw.ElapsedMicros()), total_hits);
  }
  {
    // fig15: grid-hash graph construction over one query result.
    const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
    const auto objects =
        benchsupport::RandomObjects(scale.graph_objects, bounds, /*seed=*/3);
    std::vector<GraphInput> inputs;
    inputs.reserve(objects.size());
    for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
    uint64_t edges = 0;
    Stopwatch sw;
    for (size_t r = 0; r < scale.graph_reps; ++r) {
      SpatialGraph graph;
      BuildGraphGridHash(inputs, bounds, 32768, &graph);
      edges += graph.NumEdges();
    }
    RecordOrUse(rec, "graph_grid_hash",
                scale.graph_reps * scale.graph_objects,
                static_cast<double>(sw.ElapsedMicros()), edges);
  }
  // New raw-speed rows land after the rows above so earlier snapshots'
  // row positions (and diff tooling keyed on them) stay comparable.
  {
    // Batched corner-hull prefilter (Frustum::HullOverlapBits) over a
    // blocked-SoA slot array — the per-chunk rejection step of the
    // directory walk, isolated. Workload shared with micro_core_ops
    // BM_FrustumBatchHullTest via benchsupport.
    constexpr uint32_t kBoxes = 4096;
    const std::vector<double> blocks =
        benchsupport::HullTestSlotBlocks(kBoxes);
    const Frustum frustum = benchsupport::HullTestFrustum();
    const size_t rounds = scale.rtree_queries;
    uint64_t survivors = 0;
    Stopwatch sw;
    for (size_t r = 0; r < rounds; ++r) {
      for (uint32_t base = 0; base < kBoxes; base += 64) {
        survivors +=
            std::popcount(frustum.HullOverlapBits(blocks.data(), base, 64));
      }
    }
    RecordOrUse(rec, "frustum_batch_hull_test", rounds * kBoxes,
                static_cast<double>(sw.ElapsedMicros()), survivors);
  }
  {
    // Tiled grid-hash build with the tile count pinned (4), independent
    // of the machine's worker-pool default — same workload as the
    // graph_grid_hash row, so the trajectory captures the explicit
    // fan-out + deterministic-merge path too.
    const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
    const auto objects =
        benchsupport::RandomObjects(scale.graph_objects, bounds, /*seed=*/3);
    std::vector<GraphInput> inputs;
    inputs.reserve(objects.size());
    for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
    uint64_t edges = 0;
    Stopwatch sw;
    for (size_t r = 0; r < scale.graph_reps; ++r) {
      SpatialGraph graph;
      BuildGraphGridHashTiled(inputs, bounds, 32768, /*tiles=*/4, &graph);
      edges += graph.NumEdges();
    }
    RecordOrUse(rec, "graph_grid_hash_parallel",
                scale.graph_reps * scale.graph_objects,
                static_cast<double>(sw.ElapsedMicros()), edges);
  }
}

void PrintUsage() {
  std::printf(
      "baseline_recorder: record a benchmark-baseline snapshot\n"
      "  --tiny          CI-smoke scale (seconds, not minutes)\n"
      "  --label NAME    snapshot label (default: current)\n"
      "  --out PATH      output JSON (default: BENCH_baseline.json)\n"
      "  --append        append a snapshot instead of rewriting the file\n"
      "                  (refuses labels already present in the file, and\n"
      "                  seed3 flip labels before the pre-qos anchor)\n"
      "  --force         append even if a refusal would apply\n"
      "  --serving MODE  multi-client serving semantics: full (default),\n"
      "                  cache-qos, or legacy (pre-QoS)\n"
      "  --help          this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  RecorderOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      opt.tiny = true;
    } else if (arg == "--append") {
      opt.append = true;
    } else if (arg == "--force") {
      opt.force = true;
    } else if (arg == "--label" && i + 1 < argc) {
      opt.label = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--serving" && i + 1 < argc) {
      opt.serving = argv[++i];
    } else if (arg == "--help") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  SharedServingConfig serving;
  if (!ServingConfigFor(opt.serving, &serving)) {
    std::fprintf(stderr, "unknown --serving mode: %s\n", opt.serving.c_str());
    PrintUsage();
    return 2;
  }

  // Refuse invalid appends up front, before burning minutes of recording
  // (the checked write below re-validates at write time): duplicate
  // labels, and seed3 flip labels whose pre-qos anchor is missing.
  if (opt.append && !opt.force) {
    const std::string existing = ReadFileOrEmpty(opt.out);
    if (BaselineContainsLabel(existing, opt.label)) {
      std::fprintf(stderr,
                   "label '%s' already exists in %s; pick a new label or pass "
                   "--force\n",
                   opt.label.c_str(), opt.out.c_str());
      return 1;
    }
    if (RequiresSeed3Anchor(opt.label) &&
        !BaselineContainsLabel(existing, kSeed3PreAnchor)) {
      std::fprintf(stderr,
                   "seed3 label '%s' requires the '%s' anchor in %s first; "
                   "record the legacy-serving anchor or pass --force\n",
                   opt.label.c_str(), kSeed3PreAnchor, opt.out.c_str());
      return 1;
    }
  }

  Recorder rec(opt.tiny ? kTinyScale : kFullScale, opt.tiny);
  std::printf("== baseline_recorder (label=%s, %s scale, serving=%s) ==\n",
              opt.label.c_str(), opt.tiny ? "tiny" : "full",
              opt.serving.c_str());
  Stopwatch total;
  {
    NeuronStack stack(rec.scale().neuron_objects, /*seed=*/1);
    RecordFigScenarios(&rec, stack);
    RecordMultiClientScenarios(&rec, stack, serving);
    RecordFaultScenarios(&rec, stack);
  }
  RecordWallclockScenarios(&rec);
  RecordMicroScenarios(&rec);

  const std::string snapshot =
      BaselineSnapshotJson(opt.label, rec.tiny(), rec.figs, rec.micro);
  std::string error;
  if (!RecordBaselineSnapshot(opt.out, opt.append, opt.force, opt.label,
                              snapshot, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s snapshot '%s' (%zu fig rows, %zu micro rows) in %.1fs\n",
              opt.out.c_str(), opt.label.c_str(), rec.figs.size(),
              rec.micro.size(), total.ElapsedSeconds());
  return 0;
}
