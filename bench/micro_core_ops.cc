/// google-benchmark microbenchmarks of the core operations underlying
/// SCOUT: Hilbert encoding, grid hashing (DDA cell walks), approximate
/// graph construction, R-tree / FLAT range queries and segment distance.

#include <benchmark/benchmark.h>

#include <bit>

#include "common/simd.h"
#include "geom/frustum.h"
#include "geom/grid.h"
#include "geom/hilbert.h"
#include "graph/graph_builder.h"
#include "graph/kmeans.h"
#include "graph/traversal.h"
#include "index/box_rtree.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "storage/cache.h"
#include "testing_support.h"

namespace scout {
namespace {

void BM_HilbertEncode3(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  uint32_t x = 12345 & ((1u << bits) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode3(x, x ^ 21u, x ^ 7u, bits));
    ++x;
    x &= (1u << bits) - 1;
  }
}
BENCHMARK(BM_HilbertEncode3)->Arg(8)->Arg(16)->Arg(21);

void BM_SegmentDistance(benchmark::State& state) {
  Rng rng(1);
  std::vector<Segment> segments;
  for (int i = 0; i < 1024; ++i) {
    segments.emplace_back(
        Vec3(rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)),
        Vec3(rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        segments[i & 1023].DistanceSquaredTo(segments[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_SegmentDistance);

void BM_GridCellsAlongSegment(benchmark::State& state) {
  const UniformGrid grid(Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100)), 32, 32,
                         32);
  Rng rng(2);
  std::vector<Segment> segments;
  for (int i = 0; i < 256; ++i) {
    const Vec3 a(rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100));
    Vec3 d(rng.Gaussian(0, 1), rng.Gaussian(0, 1), rng.Gaussian(0, 1));
    segments.emplace_back(a, a + d.Normalized() * 4.0);
  }
  std::vector<int64_t> cells;
  size_t i = 0;
  for (auto _ : state) {
    cells.clear();
    grid.CellsAlongSegment(segments[i & 255], &cells);
    benchmark::DoNotOptimize(cells.data());
    ++i;
  }
}
BENCHMARK(BM_GridCellsAlongSegment);

void BM_GraphGridHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const auto objects = benchsupport::RandomObjects(n, bounds, 3);
  std::vector<GraphInput> inputs;
  for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
  for (auto _ : state) {
    SpatialGraph graph;
    benchmark::DoNotOptimize(
        BuildGraphGridHash(inputs, bounds, 32768, &graph));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GraphGridHash)->Arg(128)->Arg(512)->Arg(2048);

void BM_GraphGridHashSerial(benchmark::State& state) {
  // The reference single-threaded builder (the differential oracle the
  // tiled builder is pinned against) on the same workload as
  // BM_GraphGridHash, so the serial-vs-tiled ratio reads off directly.
  const size_t n = static_cast<size_t>(state.range(0));
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const auto objects = benchsupport::RandomObjects(n, bounds, 3);
  std::vector<GraphInput> inputs;
  for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
  for (auto _ : state) {
    SpatialGraph graph;
    benchmark::DoNotOptimize(
        BuildGraphGridHashSerial(inputs, bounds, 32768, &graph));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GraphGridHashSerial)->Arg(2048);

void BM_GraphGridHashParallel(benchmark::State& state) {
  // Tiled builder with the tile count explicit (BM_GraphGridHash routes
  // through it with the worker-pool default). Output is bit-identical to
  // the serial build for every tile count; only the fan-out and merge
  // cost vary, which is exactly what this row measures.
  const size_t n = 2048;
  const uint32_t tiles = static_cast<uint32_t>(state.range(0));
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const auto objects = benchsupport::RandomObjects(n, bounds, 3);
  std::vector<GraphInput> inputs;
  for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
  for (auto _ : state) {
    SpatialGraph graph;
    benchmark::DoNotOptimize(
        BuildGraphGridHashTiled(inputs, bounds, 32768, tiles, &graph));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GraphGridHashParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GraphCsrTraverse(benchmark::State& state) {
  // Full exit-finding traversal (LabelComponents consumer shape) over the
  // finalized CSR adjacency — the read side of the observe hot path.
  const size_t n = static_cast<size_t>(state.range(0));
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const auto objects = benchsupport::RandomObjects(n, bounds, 3);
  std::vector<GraphInput> inputs;
  for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
  SpatialGraph graph;
  BuildGraphGridHash(inputs, bounds, 32768, &graph);
  uint32_t num_components = 0;
  const std::vector<uint32_t> component_of =
      LabelComponents(graph, &num_components);
  const Region region(Aabb(Vec3(2, 2, 2), Vec3(41, 41, 41)));
  std::vector<ExitPoint> exits;
  for (auto _ : state) {
    exits.clear();
    const TraversalStats stats =
        FindExits(graph, component_of, region, {}, &exits);
    benchmark::DoNotOptimize(stats.edges_traversed);
    benchmark::DoNotOptimize(exits.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GraphCsrTraverse)->Arg(512)->Arg(2048);

void BM_GraphBruteForce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Aabb bounds(Vec3(0, 0, 0), Vec3(43, 43, 43));
  const auto objects = benchsupport::RandomObjects(n, bounds, 3);
  std::vector<GraphInput> inputs;
  for (const auto& obj : objects) inputs.push_back(GraphInput{&obj, 0});
  for (auto _ : state) {
    SpatialGraph graph;
    benchmark::DoNotOptimize(BuildGraphBruteForce(inputs, 1.5, &graph));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GraphBruteForce)->Arg(128)->Arg(512);

void BM_CacheInsertEvict(benchmark::State& state) {
  // Mixed insert/refresh/evict traffic over a working set twice the
  // capacity — the executor's steady-state PrefetchCache pattern.
  const size_t capacity_pages = static_cast<size_t>(state.range(0));
  PrefetchCache cache(capacity_pages * kPageBytes);
  const uint64_t working_set = capacity_pages * 2;
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Insert(static_cast<PageId>(rng.NextBounded(working_set))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertEvict)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CacheHitTouch(benchmark::State& state) {
  // Pure hit path (hit test + LRU refresh) on a resident working set.
  const size_t capacity_pages = static_cast<size_t>(state.range(0));
  PrefetchCache cache(capacity_pages * kPageBytes);
  for (PageId p = 0; p < capacity_pages; ++p) cache.Insert(p);
  Rng rng(12);
  for (auto _ : state) {
    const PageId p = static_cast<PageId>(rng.NextBounded(capacity_pages));
    benchmark::DoNotOptimize(cache.TouchIfPresent(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitTouch)->Arg(1024)->Arg(16384);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const Aabb bounds(Vec3(0, 0, 0), Vec3(300, 300, 300));
  static auto index = []() {
    return std::move(*RTreeIndex::Build(
        benchsupport::RandomObjects(200000, Aabb(Vec3(0, 0, 0),
                                                 Vec3(300, 300, 300)),
                                    4)));
  }();
  Rng rng(5);
  std::vector<PageId> pages;
  for (auto _ : state) {
    const Region query = Region::CubeAt(
        Vec3(rng.Uniform(30, 270), rng.Uniform(30, 270),
             rng.Uniform(30, 270)),
        80000.0);
    pages.clear();
    index->QueryPages(query, &pages);
    benchmark::DoNotOptimize(pages.data());
  }
  (void)bounds;
}
BENCHMARK(BM_RTreeRangeQuery);

void BM_RTreeDirectoryWalk(benchmark::State& state) {
  // Pure directory walk: box queries against a bare BoxRTree (no page
  // store), isolating the SoA child-AABB test loop. Tree + query
  // distribution shared with the recorder's rtree_directory_walk row
  // via benchsupport (STR-packed entries).
  const size_t n = static_cast<size_t>(state.range(0));
  const BoxRTree tree = benchsupport::DirectoryWalkTree(n);
  Rng rng(17);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    const Aabb query = benchsupport::NextDirectoryWalkQuery(&rng);
    out.clear();
    tree.Query(query, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RTreeDirectoryWalk)->Arg(50000)->Arg(200000);

void BM_FrustumPrefilteredQuery(benchmark::State& state) {
  // Frustum-aspect index queries: the walk the vis scenarios run, with
  // the AABB prefilter rejecting far-away directory nodes before the
  // plane tests. Query distribution shared with the recorder's
  // frustum_prefiltered_query row via benchsupport.
  static auto index = []() {
    return std::move(*RTreeIndex::Build(
        benchsupport::RandomObjects(200000, Aabb(Vec3(0, 0, 0),
                                                 Vec3(300, 300, 300)),
                                    4)));
  }();
  Rng rng(15);
  std::vector<PageId> pages;
  for (auto _ : state) {
    const Region query = benchsupport::NextFrustumQuery(&rng);
    pages.clear();
    index->QueryPages(query, &pages);
    benchmark::DoNotOptimize(pages.data());
  }
}
BENCHMARK(BM_FrustumPrefilteredQuery);

void BM_FrustumBatchHullTest(benchmark::State& state) {
  // Batched corner-hull AABB prefilter (Frustum::HullOverlapBits) over a
  // blocked-SoA slot array: the per-chunk rejection step the directory
  // walk runs before any exact plane test. Workload shared with the
  // recorder's frustum_batch_hull_test row via benchsupport.
  constexpr uint32_t kBoxes = 4096;
  static_assert(kBoxes % 64 == 0);
  const std::vector<double> blocks = benchsupport::HullTestSlotBlocks(kBoxes);
  const Frustum frustum = benchsupport::HullTestFrustum();
  uint64_t survivors = 0;
  for (auto _ : state) {
    for (uint32_t base = 0; base < kBoxes; base += 64) {
      survivors += std::popcount(
          frustum.HullOverlapBits(blocks.data(), base, 64));
    }
  }
  benchmark::DoNotOptimize(survivors);
  state.SetItemsProcessed(state.iterations() * kBoxes);
}
BENCHMARK(BM_FrustumBatchHullTest);

void BM_FlatOrderedQuery(benchmark::State& state) {
  static auto index = []() {
    return std::move(*FlatIndex::Build(
        benchsupport::RandomObjects(100000, Aabb(Vec3(0, 0, 0),
                                                 Vec3(250, 250, 250)),
                                    6)));
  }();
  Rng rng(7);
  std::vector<PageId> pages;
  for (auto _ : state) {
    const Vec3 center(rng.Uniform(30, 220), rng.Uniform(30, 220),
                      rng.Uniform(30, 220));
    const Region query = Region::CubeAt(center, 80000.0);
    pages.clear();
    index->QueryPagesOrdered(query, center - Vec3(20, 0, 0), &pages);
    benchmark::DoNotOptimize(pages.data());
  }
}
BENCHMARK(BM_FlatOrderedQuery);

void BM_KMeans(benchmark::State& state) {
  Rng data_rng(8);
  std::vector<Vec3> points;
  for (int i = 0; i < 200; ++i) {
    points.emplace_back(data_rng.Uniform(0, 50), data_rng.Uniform(0, 50),
                        data_rng.Uniform(0, 50));
  }
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeans(points, 6, &rng));
  }
}
BENCHMARK(BM_KMeans);

}  // namespace
}  // namespace scout

BENCHMARK_MAIN();
