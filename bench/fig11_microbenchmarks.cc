/// Reproduces Figure 11 (and prints the Figure 10 parameter table): cache
/// hit rate (a) and speedup over no prefetching (b) of EWMA, straight
/// line, Hilbert and SCOUT on the five no-gap microbenchmarks derived
/// from the Blue Brain use cases. The paper's claims to reproduce: SCOUT
/// wins everywhere; model building (longest window) and the long
/// visualization sequences reach the highest SCOUT accuracy; ad-hoc
/// queries (short sequences, big volumes) are SCOUT's weakest case; a
/// larger window ratio (pattern vs statistics) raises accuracy.

#include "bench/bench_util.h"

int main() {
  using namespace scout;
  using namespace scout::bench;

  PrintHeader("Figure 10: microbenchmark parameters");
  std::printf("%-18s %8s %10s %8s %6s %7s\n", "name", "queries",
              "vol[um^3]", "aspect", "gap", "ratio");
  for (const MicrobenchSpec& spec : kMicrobenchmarks) {
    std::printf("%-18s %8u %10.0f %8s %6.0f %7.1f\n",
                std::string(spec.name).c_str(), spec.queries_in_sequence,
                spec.query_volume,
                spec.aspect == QueryAspect::kCube ? "cube" : "frustum",
                spec.gap_distance, spec.prefetch_window_ratio);
  }

  NeuronStack stack;
  PrefetcherSet set(stack.dataset.bounds);

  std::vector<std::string> cols;
  for (int b = 0; b < kNoGapBenchCount; ++b) {
    cols.push_back(std::string(kMicrobenchmarks[b].name).substr(0, 10));
  }

  std::vector<std::vector<double>> hit(set.PaperLineup().size());
  std::vector<std::vector<double>> speedup(set.PaperLineup().size());
  auto lineup = set.PaperLineup();
  for (int b = 0; b < kNoGapBenchCount; ++b) {
    const MicrobenchSpec& spec = kMicrobenchmarks[b];
    const QuerySequenceConfig qcfg = QueryConfigFor(spec);
    const ExecutorConfig ecfg = ExecutorConfigFor(spec, stack.rtree->store());
    for (size_t i = 0; i < lineup.size(); ++i) {
      const ExperimentResult r =
          RunGuidedExperiment(stack.dataset, *stack.rtree, lineup[i], qcfg,
                              ecfg, kSequences, kSeed);
      hit[i].push_back(r.hit_rate_pct);
      speedup[i].push_back(r.speedup);
    }
  }

  PrintHeader("Figure 11a: cache hit rate [%]");
  PrintColumns("prefetcher", cols);
  for (size_t i = 0; i < lineup.size(); ++i) {
    PrintRow(std::string(lineup[i]->name()), hit[i]);
  }

  PrintHeader("Figure 11b: speedup vs no prefetching");
  PrintColumns("prefetcher", cols);
  for (size_t i = 0; i < lineup.size(); ++i) {
    PrintRow(std::string(lineup[i]->name()), speedup[i], 2);
  }
  std::printf(
      "\npaper shape: SCOUT clearly highest on every benchmark (up to >90%%\n"
      "at window ratio 2.0); speedups correlate with accuracy.\n");
  return 0;
}
