/// Reproduces Figure 13: SCOUT's prediction-accuracy sensitivity to (a)
/// query volume, (b) dataset density, (c) sequence length, (d) prefetch
/// window ratio, (e) grid resolution and (f) gap distance (SCOUT vs
/// SCOUT-OPT). Defaults follow §7.4: 25-query sequences, 80,000 um^3
/// cubes, window ratio 1. Paper shapes to reproduce: accuracy falls with
/// volume; is flat across density; rises with sequence length; rises
/// steeply with the window ratio; tolerates fine grids but collapses on
/// very coarse ones; and falls with gap distance with SCOUT-OPT clearly
/// above SCOUT.

#include "bench/bench_util.h"

using namespace scout;
using namespace scout::bench;

namespace {

QuerySequenceConfig DefaultQueries() {
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.query_volume = 80000.0;
  return qcfg;
}

ExecutorConfig DefaultExecutor(const PageStore& store) {
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(store);
  ecfg.prefetch_window_ratio = 1.0;
  return ecfg;
}

double RunScout(const NeuronStack& stack, const QuerySequenceConfig& qcfg,
                const ExecutorConfig& ecfg, const ScoutConfig& scfg = {}) {
  ScoutPrefetcher scout{scfg};
  return RunGuidedExperiment(stack.dataset, *stack.rtree, &scout, qcfg,
                             ecfg, kSequences, kSeed)
      .hit_rate_pct;
}

}  // namespace

int main() {
  NeuronStack stack;

  {  // (a) Query volume.
    PrintHeader("Figure 13a: hit rate [%] vs query volume [um^3]");
    std::vector<std::string> cols;
    std::vector<double> row;
    for (double volume : {10000, 45000, 80000, 115000, 150000, 185000}) {
      QuerySequenceConfig qcfg = DefaultQueries();
      qcfg.query_volume = volume;
      cols.push_back(std::to_string((int)(volume / 1000)) + "k");
      row.push_back(
          RunScout(stack, qcfg, DefaultExecutor(stack.rtree->store())));
    }
    PrintColumns("", cols);
    PrintRow("scout", row);
  }

  {  // (b) Dataset density. Paper: 50M-450M objects in 285 mm^3; scaled
     // to the same densities in our 600^3 um volume.
    PrintHeader("Figure 13b: hit rate [%] vs dataset density [objects]");
    std::vector<std::string> cols;
    std::vector<double> row;
    for (uint64_t objects : {38000, 114000, 189000, 265000, 341000}) {
      NeuronStack sized(objects, /*seed=*/1);
      cols.push_back(std::to_string(objects / 1000) + "k");
      row.push_back(RunScout(sized, DefaultQueries(),
                             DefaultExecutor(sized.rtree->store())));
    }
    PrintColumns("", cols);
    PrintRow("scout", row);
  }

  {  // (c) Sequence length.
    PrintHeader("Figure 13c: hit rate [%] vs sequence length [#queries]");
    std::vector<std::string> cols;
    std::vector<double> row;
    for (uint32_t n : {5, 15, 25, 35, 45, 55}) {
      QuerySequenceConfig qcfg = DefaultQueries();
      qcfg.num_queries = n;
      cols.push_back(std::to_string(n));
      row.push_back(
          RunScout(stack, qcfg, DefaultExecutor(stack.rtree->store())));
    }
    PrintColumns("", cols);
    PrintRow("scout", row);
  }

  {  // (d) Prefetch window ratio.
    PrintHeader("Figure 13d: hit rate [%] vs prefetch window ratio");
    std::vector<std::string> cols;
    std::vector<double> row;
    for (double ratio : {0.1, 0.7, 1.3, 1.9, 2.5}) {
      ExecutorConfig ecfg = DefaultExecutor(stack.rtree->store());
      ecfg.prefetch_window_ratio = ratio;
      cols.push_back(FormatDouble(ratio, 1));
      row.push_back(RunScout(stack, DefaultQueries(), ecfg));
    }
    PrintColumns("", cols);
    PrintRow("scout", row);
  }

  {  // (e) Grid resolution (graph precision).
    PrintHeader("Figure 13e: hit rate [%] vs grid resolution [#cells]");
    std::vector<std::string> cols;
    std::vector<double> row;
    for (int64_t cells : {32768, 4096, 512, 64, 8}) {
      ScoutConfig scfg;
      scfg.grid_cells = cells;
      cols.push_back(std::to_string(cells));
      row.push_back(RunScout(stack, DefaultQueries(),
                             DefaultExecutor(stack.rtree->store()), scfg));
    }
    PrintColumns("", cols);
    PrintRow("scout", row);
  }

  {  // (f) Gap distance: SCOUT vs SCOUT-OPT (on FLAT).
    PrintHeader("Figure 13f: hit rate [%] vs gap distance [um]");
    auto flat = std::move(*FlatIndex::Build(stack.dataset.objects));
    std::vector<std::string> cols;
    std::vector<double> scout_row;
    std::vector<double> opt_row;
    // Paper sweep: gap distances 10-25 um at the §7.4 defaults. See
    // EXPERIMENTS.md for where our scaled-down windows make SCOUT-OPT's
    // crawl overhead visible relative to the paper.
    for (double gap : {10.0, 15.0, 20.0, 25.0}) {
      QuerySequenceConfig qcfg = DefaultQueries();
      qcfg.gap_distance = gap;
      const ExecutorConfig ecfg = DefaultExecutor(flat->store());
      cols.push_back(FormatDouble(gap, 0));
      ScoutPrefetcher scout{ScoutConfig{}};
      scout_row.push_back(RunGuidedExperiment(stack.dataset, *flat, &scout,
                                              qcfg, ecfg, kSequences, kSeed)
                              .hit_rate_pct);
      ScoutOptPrefetcher opt{ScoutConfig{}, flat.get()};
      opt_row.push_back(RunGuidedExperiment(stack.dataset, *flat, &opt,
                                            qcfg, ecfg, kSequences, kSeed)
                            .hit_rate_pct);
    }
    PrintColumns("", cols);
    PrintRow("scout", scout_row);
    PrintRow("scout-opt", opt_row);
  }
  return 0;
}
