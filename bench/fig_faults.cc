/// Degraded-mode serving under injected storage faults (robustness
/// follow-on to fig_multiclient). N = 8 sessions share one cache and one
/// 4-channel disk while a deterministic FaultSchedule injects transient
/// read failures, channel outages and latency spikes at increasing
/// rates. Each rate is served two ways:
///   - retry:  demand misses retry with seeded exponential backoff, but
///     prefetching keeps issuing speculative reads into the storm;
///   - shed:   same retries, plus prefetch shedding — while a session is
///     in its degraded window, window fetches are dropped and the
///     session falls back to on-demand reads until the window expires.
/// The sweep shows what shedding buys: at non-trivial fault rates the
/// pooled p99 under `shed` must not be worse than under `retry`, because
/// speculative reads stop competing with recovery traffic.
///
/// The zero-rate row doubles as a determinism anchor: serving with NO
/// schedule attached and serving with an all-zero schedule must be
/// bit-identical (hit rate, response, p99, disk stats), or the fault
/// seams leaked into the fault-free path — the bench exits 1.

#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "engine/multi_client_engine.h"
#include "storage/fault_model.h"

using namespace scout;
using namespace scout::bench;

namespace {

constexpr uint32_t kSessions = 8;

PrefetcherFactory ScoutFactory() {
  return [] { return std::make_unique<ScoutPrefetcher>(ScoutConfig{}); };
}

struct FaultRate {
  const char* name;
  double read_failure_prob;
  double channel_outage_prob;
  double latency_spike_prob;
};

constexpr FaultRate kRates[] = {
    {"none", 0.0, 0.0, 0.0},
    {"light", 0.02, 0.10, 0.02},
    {"moderate", 0.08, 0.25, 0.05},
    {"heavy", 0.20, 0.40, 0.10},
};

FaultConfig ConfigFor(const FaultRate& rate) {
  FaultConfig config;
  config.seed = 0xdecafbad;
  config.read_failure_prob = rate.read_failure_prob;
  config.read_failure_burst_us = 4000;
  config.channel_outage_prob = rate.channel_outage_prob;
  config.channel_outage_period_us = 200000;
  config.channel_outage_us = 30000;
  config.latency_spike_prob = rate.latency_spike_prob;
  config.latency_spike_multiplier = 6.0;
  return config;
}

SharedCacheResult Serve(const Dataset& dataset, const SpatialIndex& index,
                        const QuerySequenceConfig& qcfg,
                        const ExecutorConfig& base,
                        const FaultSchedule* schedule, bool shed) {
  ExecutorConfig ecfg = base;
  ecfg.fault_schedule = schedule;
  ecfg.fault_policy.shed_prefetch_on_retry = shed;
  return RunSharedCacheExperiment(dataset, index, ScoutFactory(), qcfg, ecfg,
                                  kSessions, kSeed, /*num_workers=*/1);
}

void PrintResultRow(const std::string& label, const SharedCacheResult& r) {
  PrintRow(label,
           {r.combined.hit_rate_pct,
            static_cast<double>(r.p99_response_us) / 1000.0,
            static_cast<double>(r.faults_seen),
            static_cast<double>(r.retries),
            static_cast<double>(r.shed_prefetches),
            static_cast<double>(r.unavailable_queries)},
           1);
}

/// Exits 1 on any divergence between no-schedule and zero-rate serving:
/// the fault machinery must cost exactly nothing when no fault can fire.
bool CheckZeroFaultIdentity(const SharedCacheResult& plain,
                            const SharedCacheResult& zero) {
  bool ok = true;
  const auto check = [&ok](const char* what, int64_t a, int64_t b) {
    if (a != b) {
      std::fprintf(stderr,
                   "fig_faults: zero-fault identity violated: %s differs "
                   "(%lld vs %lld)\n",
                   what, static_cast<long long>(a),
                   static_cast<long long>(b));
      ok = false;
    }
  };
  check("total_response_us", plain.combined.total_response_us,
        zero.combined.total_response_us);
  check("total_residual_us", plain.combined.total_residual_us,
        zero.combined.total_residual_us);
  check("total_disk_wait_us", plain.combined.total_disk_wait_us,
        zero.combined.total_disk_wait_us);
  check("total_hits", static_cast<int64_t>(plain.combined.total_hits),
        static_cast<int64_t>(zero.combined.total_hits));
  check("total_pages", static_cast<int64_t>(plain.combined.total_pages),
        static_cast<int64_t>(zero.combined.total_pages));
  check("evictions", static_cast<int64_t>(plain.evictions),
        static_cast<int64_t>(zero.evictions));
  check("p99_response_us", plain.p99_response_us, zero.p99_response_us);
  check("disk.service_us", plain.disk.service_us, zero.disk.service_us);
  check("disk.wait_us", plain.disk.wait_us, zero.disk.wait_us);
  check("faults_seen", static_cast<int64_t>(zero.faults_seen), 0);
  check("retries", static_cast<int64_t>(zero.retries), 0);
  check("shed_prefetches", static_cast<int64_t>(zero.shed_prefetches), 0);
  return ok;
}

void PrintUsage() {
  std::printf(
      "fig_faults: degraded-mode serving under injected storage faults\n"
      "  --tiny   small dataset (CI smoke)\n"
      "  --help   this message\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  NeuronStack stack(tiny ? 40000 : 345000);
  const MicrobenchSpec& spec = SpecOf("model-building");
  const QuerySequenceConfig qcfg = QueryConfigFor(spec);
  const ExecutorConfig base = ExecutorConfigFor(spec, stack.rtree->store());

  PrintHeader(
      "fig_faults: model-building, N=8 shared serving under injected "
      "faults — retry-only vs retry+shed");
  PrintColumns("rate / policy",
               {"hit%", "p99ms", "faults", "retries", "shed", "unavail"});

  // Zero-fault determinism anchor (also the first table row).
  const SharedCacheResult plain =
      Serve(stack.dataset, *stack.rtree, qcfg, base, nullptr, true);
  const FaultSchedule zero{ConfigFor(kRates[0])};
  const SharedCacheResult zero_attached =
      Serve(stack.dataset, *stack.rtree, qcfg, base, &zero, true);
  PrintResultRow("none (anchor)", plain);
  if (!CheckZeroFaultIdentity(plain, zero_attached)) return 1;

  for (size_t i = 1; i < std::size(kRates); ++i) {
    const FaultSchedule schedule{ConfigFor(kRates[i])};
    const SharedCacheResult retry =
        Serve(stack.dataset, *stack.rtree, qcfg, base, &schedule, false);
    const SharedCacheResult shed =
        Serve(stack.dataset, *stack.rtree, qcfg, base, &schedule, true);
    PrintResultRow(std::string(kRates[i].name) + " retry", retry);
    PrintResultRow(std::string(kRates[i].name) + " shed", shed);
  }

  std::printf(
      "\nhit%% = pooled cache-hit rate over 8 sessions; p99ms = pooled\n"
      "nearest-rank p99 simulated response; faults = transient read\n"
      "failures observed; retries = demand-miss retry rounds; shed =\n"
      "prefetch window fetches dropped while degraded; unavail = queries\n"
      "ending kUnavailable after exhausting their retry budget. The\n"
      "zero-rate anchor row is verified bit-identical with and without a\n"
      "schedule attached (exit 1 on divergence).\n");
  return 0;
}
