/// Ablations of SCOUT's design choices (DESIGN.md extras):
///  - broad vs deep prefetching strategy (§5.2): deep has similar mean
///    accuracy but much larger variance across sequences;
///  - the k-means cap d on prefetch locations (§5.2.2);
///  - grid-hash graph vs exact O(n^2) brute-force graph (§4.2): the
///    approximation should cost almost no accuracy;
///  - caching residual reads in the prefetch cache (engine choice).

#include "bench/bench_util.h"

using namespace scout;
using namespace scout::bench;

namespace {

ExperimentResult Run(const NeuronStack& stack, Prefetcher* p,
                     const ExecutorConfig& ecfg) {
  QuerySequenceConfig qcfg;
  qcfg.num_queries = 25;
  qcfg.query_volume = 80000.0;
  return RunGuidedExperiment(stack.dataset, *stack.rtree, p, qcfg, ecfg,
                             kSequences, kSeed);
}

}  // namespace

int main() {
  NeuronStack stack;
  ExecutorConfig ecfg;
  ecfg.cache_bytes = ScaledCacheBytes(stack.rtree->store());
  ecfg.prefetch_window_ratio = 1.4;

  PrintHeader("Ablation: broad vs deep prefetching strategy");
  std::printf("%-22s %10s %10s %12s\n", "strategy", "hit[%]", "speedup",
              "hit stddev");
  for (auto strategy :
       {ScoutConfig::Strategy::kBroad, ScoutConfig::Strategy::kDeep}) {
    ScoutConfig config;
    config.strategy = strategy;
    ScoutPrefetcher scout{config};
    const ExperimentResult r = Run(stack, &scout, ecfg);
    std::printf("%-22s %10.1f %10.2f %12.1f\n",
                strategy == ScoutConfig::Strategy::kBroad ? "broad" : "deep",
                r.hit_rate_pct, r.speedup, r.seq_hit_rate.stddev());
  }
  std::printf("expected: similar means, deep has the larger variance.\n");

  PrintHeader("Ablation: k-means cap d on prefetch locations");
  std::printf("%-22s %10s %10s\n", "d", "hit[%]", "speedup");
  for (uint32_t d : {1, 2, 4, 6, 12}) {
    ScoutConfig config;
    config.max_prefetch_locations = d;
    ScoutPrefetcher scout{config};
    const ExperimentResult r = Run(stack, &scout, ecfg);
    std::printf("%-22u %10.1f %10.2f\n", d, r.hit_rate_pct, r.speedup);
  }

  PrintHeader("Ablation: grid-hash vs brute-force graph construction");
  std::printf("%-22s %10s %14s\n", "builder", "hit[%]", "observe[ms/seq]");
  for (bool brute : {false, true}) {
    ScoutConfig config;
    config.use_brute_force_graph = brute;
    ScoutPrefetcher scout{config};
    const ExperimentResult r = Run(stack, &scout, ecfg);
    std::printf("%-22s %10.1f %14.2f\n", brute ? "brute-force" : "grid-hash",
                r.hit_rate_pct,
                (r.total_graph_build_us + r.total_prediction_us) * 1e-3 /
                    static_cast<double>(r.num_sequences));
  }
  std::printf("expected: nearly equal accuracy — the approximate graph\n"
              "suffices (paper §4.2/§7.4.5).\n");

  PrintHeader("Ablation: caching residual reads");
  std::printf("%-22s %10s %10s\n", "mode", "hit[%]", "speedup");
  for (bool cache_residual : {false, true}) {
    ExecutorConfig variant = ecfg;
    variant.cache_residual_reads = cache_residual;
    ScoutPrefetcher scout{ScoutConfig{}};
    const ExperimentResult r = Run(stack, &scout, variant);
    std::printf("%-22s %10.1f %10.2f\n",
                cache_residual ? "cache-residual" : "prefetch-only",
                r.hit_rate_pct, r.speedup);
  }
  std::printf("note: caching residual reads adds overlap hits for every\n"
              "policy; accuracy figures in this repo use prefetch-only.\n");
  return 0;
}
